// Command paperbench regenerates every table and figure of the paper's
// evaluation section (Section 5-6) and prints the same rows/series.
//
// Usage:
//
//	paperbench -exp all          # everything (several minutes)
//	paperbench -exp f9 -n 4000   # one experiment, smaller runs
//	paperbench -exp f9 -j 8      # fan the sweep out to 8 workers
//	paperbench -exp telemetry -heatmap -sample 200
//	paperbench -exp f9 -policy static    # any registered policy name
//
// -policy and -mode steer the single-scheme experiments (f9, energy,
// power, telemetry); names resolve through the cache policy registry, so
// policies added with cache.RegisterPolicy work unchanged. The
// fixed-scheme reproductions (t1-t4, f7, f8, headline) ignore them.
// -router overrides the router microarchitecture of every simulated run;
// it resolves through the router registry (-list-routers on nucasim).
//
// Experiments: t1 t2 t3 t4 f7 f8 f9 headline energy power pareto telemetry all
//
// The pareto experiment crosses every registered router engine with the
// mesh, simplified-mesh, halo, and ring designs and both multicast
// schemes, prints each point's area, latency, and energy, and marks the
// configurations on the cost/performance frontier (see EXPERIMENTS.md).
//
// The telemetry section compares designs A, D, and F side by side on one
// benchmark with cycle-level probes: -heatmap prints ASCII link/bank
// heatmaps, -sample N prints queue-occupancy time series, -trace F
// writes the flit-level JSONL trace. Passing any of those flags appends
// the section after the selected experiments.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"nucanet/internal/bank"
	"nucanet/internal/cliutil"
	"nucanet/internal/config"
	"nucanet/internal/core"
	"nucanet/internal/mem"
	"nucanet/internal/telemetry"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment: t1 t2 t3 t4 f7 f8 f9 headline energy power pareto telemetry all")
		n      = flag.Int("n", 8000, "measured L2 accesses per run")
		seed   = flag.Uint64("seed", 42, "random seed")
		jobs   = cliutil.Jobs(flag.CommandLine)
		tflags = cliutil.Telemetry(flag.CommandLine)
	)
	routerName := cliutil.Router(flag.CommandLine)
	policy, mode := cliutil.Scheme(flag.CommandLine)
	flag.Parse()
	workers, err := cliutil.ResolveJobs(*jobs)
	fatal(err)
	// The scheme flags steer the single-scheme experiments (f9, energy,
	// power, telemetry); any name registered with cache.RegisterPolicy
	// parses. The fixed-scheme reproductions (t1-t4, f7, f8, headline)
	// ignore them by design. Defaults match the paper configuration.
	cfg := core.ExpConfig{
		Accesses: *n, Seed: *seed, Workers: workers,
		PolicyName: policy.String(), ModeName: mode.String(),
		RouterName: *routerName,
	}
	traceOut := tflags.TracePath
	tcfg := tflags.Config()

	run := map[string]func(core.ExpConfig){
		"t1": func(core.ExpConfig) { table1() },
		"t2": func(c core.ExpConfig) { table2(c) },
		"t3": func(core.ExpConfig) { table3() },
		"t4": func(core.ExpConfig) { table4() },
		"f7": fig7, "f8": fig8, "f9": fig9,
		"headline":  headline,
		"energy":    energyExp,
		"power":     powerExp,
		"pareto":    paretoExp,
		"telemetry": func(c core.ExpConfig) { telemetryExp(c, tcfg, *traceOut) },
	}
	order := []string{"t1", "t2", "t3", "t4", "f7", "f8", "f9", "headline", "energy", "power", "pareto"}

	if *exp == "all" {
		for _, e := range order {
			run[e](cfg)
		}
		if tcfg.Enabled() {
			telemetryExp(cfg, tcfg, *traceOut)
		}
		return
	}
	f, ok := run[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "paperbench: unknown experiment %q (want %s, telemetry, or all)\n",
			*exp, strings.Join(order, " "))
		os.Exit(1)
	}
	f(cfg)
	if tcfg.Enabled() && *exp != "telemetry" {
		telemetryExp(cfg, tcfg, *traceOut)
	}
}

func header(s string) {
	fmt.Printf("\n=== %s ===\n", s)
}

func table1() {
	header("Table 1: system parameters")
	fmt.Println("memory: block 64B; latency 130 cycles + 4 cycles per 8B (pipelined)")
	fmt.Println("router: 4-flit buffers, 4 VCs per PC, 128-bit flits, 1 cycle per stage")
	fmt.Println("bank size    wire delay   tag only   tag+replacement")
	for _, kb := range []int{64, 128, 256, 512} {
		l := bank.LatencyFor(kb)
		fmt.Printf("  %4d KB     %d cycle(s)   %d cycles   %d cycles\n",
			kb, l.Wire, l.TagOnly, l.TagRepl)
	}
	c := mem.DefaultConfig()
	fmt.Printf("derived: 64B block read = %d cycles at the pins\n", c.ReadLatency())
}

func table2(cfg core.ExpConfig) {
	header("Table 2: benchmarks (profile vs generator self-check)")
	fmt.Println("name     instr   perfIPC  reads(M) writes(M)  acc/instr | gen acc/instr  gen wr%   gen hit% (16-way LRU)")
	for _, row := range core.Table2Check(40000, cfg.Seed) {
		p := row.Profile
		fmt.Printf("%-8s %5.2gB  %5.2f   %8.3f %8.3f   %8.3f | %12.4f  %6.1f%%  %6.1f%%\n",
			p.Name, float64(p.InstrTotal)/1e9, p.PerfectIPC, p.ReadsM, p.WritesM,
			p.AccPerInstr, row.GenAccPerInst, 100*row.GenWriteFrac, 100*row.GenHitRate16)
	}
}

func table3() {
	header("Table 3: network designs")
	for _, d := range config.Designs() {
		fmt.Printf("  %s: %-55s banks/column: %v\n", d.ID, d.Description, d.Banks)
	}
}

func table4() {
	header("Table 4: area analysis (cacti-lite model)")
	fmt.Println("design   bank%   router%   link%     L2 mm2    chip mm2")
	reps, err := core.Table4()
	fatal(err)
	for _, r := range reps {
		fmt.Printf("  %s     %5.1f     %5.1f   %5.1f   %8.2f   %9.2f\n",
			r.DesignID, r.BankPct(), r.RouterPct(), r.LinkPct(), r.L2MM2(), r.ChipMM2)
	}
	fmt.Println("paper:  A 47.8/20.8/31.4 567.70/567.70 | B 58.4/13.0/28.6 464.60/521.99")
	fmt.Println("        E 67.5/14.1/18.4 402.30/1602.22 | F 78.7/5.7/15.7 312.19/517.61")
}

func fig7(cfg core.ExpConfig) {
	header("Figure 7: L2 access latency split, unicast LRU, Design A")
	rows, rep, err := core.Fig7(cfg)
	fatal(err)
	fmt.Println("benchmark   bank%   network%   memory%     p50     p99")
	var b, nw, m float64
	for _, r := range rows {
		fmt.Printf("  %-9s %5.1f      %5.1f     %5.1f   %5d   %5d\n",
			r.Benchmark, r.BankPct, r.NetPct, r.MemPct, r.P50, r.P99)
		b += r.BankPct
		nw += r.NetPct
		m += r.MemPct
	}
	k := float64(len(rows))
	fmt.Printf("  %-9s %5.1f      %5.1f     %5.1f   (paper avg: 25 / 65 / 10)\n",
		"avg", b/k, nw/k, m/k)
	sweepLine(rep)
}

func fig8(cfg core.ExpConfig) {
	header("Figure 8: access latency by scheme, Design A")
	cells, rep, err := core.Fig8(cfg)
	fatal(err)
	fmt.Println("(a) average / (b) hit / (c) miss latency in cycles; IPC")
	fmt.Printf("%-9s", "benchmark")
	for _, s := range core.Fig8Schemes() {
		fmt.Printf(" | %-19s", s.Name)
	}
	fmt.Println()
	byBench := map[string][]core.Fig8Cell{}
	var names []string
	for _, c := range cells {
		if len(byBench[c.Benchmark]) == 0 {
			names = append(names, c.Benchmark)
		}
		byBench[c.Benchmark] = append(byBench[c.Benchmark], c)
	}
	for _, b := range names {
		fmt.Printf("%-9s", b)
		for _, c := range byBench[b] {
			fmt.Printf(" | %5.1f %5.1f %6.1f", c.AvgLat, c.HitLat, c.MissLat)
		}
		fmt.Println()
	}
	// Summary ratios the paper quotes. Two readings: the CPU-visible
	// access latency (request -> data) and the column occupancy
	// (request -> replacement complete); the paper's hop-count examples
	// (Fig. 2: 21 vs 12 hops) count the full occupancy, which is where
	// Fast-LRU's structural win lives at any load level.
	avgOf := func(scheme string, occ bool) float64 {
		var s float64
		for _, cs := range byBench {
			for _, c := range cs {
				if c.Scheme == scheme {
					if occ {
						s += c.OccLat
					} else {
						s += c.AvgLat
					}
				}
			}
		}
		return s / float64(len(byBench))
	}
	uLRU, uFast := avgOf("unicast+LRU", false), avgOf("unicast+fastLRU", false)
	mPromo, mFast := avgOf("multicast+promotion", false), avgOf("multicast+fastLRU", false)
	uLRUo, uFasto := avgOf("unicast+LRU", true), avgOf("unicast+fastLRU", true)
	mFasto := avgOf("multicast+fastLRU", true)
	fmt.Printf("\naccess latency (request->data):\n")
	fmt.Printf("  multicast fastLRU vs unicast LRU:       %+.1f%%\n", 100*(mFast-uLRU)/uLRU)
	fmt.Printf("  multicast fastLRU vs multicast promo:   %+.1f%%\n", 100*(mFast-mPromo)/mPromo)
	fmt.Printf("  unicast fastLRU vs unicast LRU:         %+.1f%%\n", 100*(uFast-uLRU)/uLRU)
	fmt.Printf("column occupancy (request->replacement done; the paper's hop metric):\n")
	fmt.Printf("  multicast fastLRU vs unicast LRU:       %+.1f%% (paper -46%%)\n", 100*(mFasto-uLRUo)/uLRUo)
	fmt.Printf("  unicast fastLRU vs unicast LRU:         %+.1f%% (paper -30%%)\n",
		100*(uFasto-uLRUo)/uLRUo)
	sweepLine(rep)
}

// schemeLabel names the scheme a single-scheme experiment actually ran
// under (the -policy/-mode override, or the paper default).
func schemeLabel(cfg core.ExpConfig) string {
	p, m := cfg.PolicyName, cfg.ModeName
	if p == "" {
		p = "fastLRU"
	}
	if m == "" {
		m = "multicast"
	}
	return m + "+" + p
}

func fig9(cfg core.ExpConfig) {
	header("Figure 9: normalized IPC by design, " + schemeLabel(cfg))
	cells, rep, err := core.Fig9(cfg)
	fatal(err)
	fmt.Printf("%-9s", "benchmark")
	for _, d := range config.Designs() {
		fmt.Printf("   %s  ", d.ID)
	}
	fmt.Println()
	sums := map[string]float64{}
	p50s := map[string]int64{}
	p99s := map[string]int64{}
	count := 0
	var cur string
	for _, c := range cells {
		if c.Benchmark != cur {
			if cur != "" {
				fmt.Println()
			}
			fmt.Printf("%-9s", c.Benchmark)
			cur = c.Benchmark
			count++
		}
		fmt.Printf(" %5.3f", c.NormalizedIPC)
		sums[c.DesignID] += c.NormalizedIPC
		p50s[c.DesignID] += c.P50
		p99s[c.DesignID] += c.P99
	}
	fmt.Println()
	fmt.Printf("%-9s", "avg")
	for _, d := range config.Designs() {
		fmt.Printf(" %5.3f", sums[d.ID]/float64(count))
	}
	fmt.Println("\n(paper avgs: A 1.00, B ~1.00, C 0.86, D 0.88, E 1.12, F 1.13)")
	// Tail view: per-design access-latency percentiles averaged over the
	// benchmarks (mean of the per-run percentile estimates, not the
	// percentile of a pooled distribution).
	k := int64(count)
	fmt.Printf("%-9s", "p50 avg")
	for _, d := range config.Designs() {
		fmt.Printf(" %5d", p50s[d.ID]/k)
	}
	fmt.Println()
	fmt.Printf("%-9s", "p99 avg")
	for _, d := range config.Designs() {
		fmt.Printf(" %5d", p99s[d.ID]/k)
	}
	fmt.Println()
	sweepLine(rep)
}

func headline(cfg core.ExpConfig) {
	header("Headline claims (abstract)")
	h, rep, err := core.ComputeHeadline(cfg)
	fatal(err)
	fmt.Printf("halo+fastLRU IPC vs mesh+multicast-promotion: %+.1f%%  (paper +38%%)\n",
		100*(h.IPCGainVsMeshPromotion-1))
	fmt.Printf("multicast fastLRU IPC vs multicast promotion: %+.1f%%  (paper +20%%)\n",
		100*(h.FastLRUIPCGain-1))
	fmt.Printf("halo (F) IPC vs mesh (A), same policy:        %+.1f%%  (paper +18%%/+13%%)\n",
		100*(h.HaloIPCGain-1))
	fmt.Printf("interconnect area, F as a share of A:          %.1f%%  (paper 23%%)\n",
		100*h.InterconnectAreaRatio)
	sweepLine(rep)
}

func energyExp(cfg core.ExpConfig) {
	header("Energy comparison (extension: the paper's stated future work)")
	cells, rep, err := core.EnergyComparison(cfg, "gcc")
	fatal(err)
	fmt.Printf("design    nJ/access   network%%   banks%%   memory%%     IPC   (gcc, %s)\n", schemeLabel(cfg))
	for _, c := range cells {
		r := c.Report
		fmt.Printf("  %s       %7.2f      %5.1f    %5.1f     %5.1f   %5.3f\n",
			c.DesignID, r.PerAccessNJ(), 100*r.NetworkShare(),
			100*r.BankPJ/r.TotalPJ(), 100*r.MemoryPJ/r.TotalPJ(), c.IPC)
	}
	sweepLine(rep)
}

func powerExp(cfg core.ExpConfig) {
	header("Power-gating sweep (extension: the paper's on-demand power control)")
	cells, rep, err := core.PowerGatingSweep(cfg, "gcc")
	fatal(err)
	fmt.Println("ways on   capacity   hit rate     IPC   nJ/access   (gcc, Design A columns gated from the far end)")
	for _, c := range cells {
		fmt.Printf("   %2d      %5d KB    %5.1f%%   %5.3f     %7.2f\n",
			c.WaysOn, c.CapacityKB, 100*c.HitRate, c.IPC, c.Energy.PerAccessNJ())
	}
	sweepLine(rep)
}

// paretoExp prints the router-microarchitecture sweep: every registered
// engine crossed with the mesh (A), simplified mesh (D), halo (F), and
// ring (R) designs under both multicast schemes, each point priced by the
// area model and measured by simulation. A '*' marks the
// area/latency/energy frontier; combinations an engine rejects print the
// reason instead of numbers.
func paretoExp(cfg core.ExpConfig) {
	header("Pareto sweep: router engine x design x scheme (gcc)")
	pts, rep, err := core.ParetoSweep(cfg, "gcc")
	fatal(err)
	fmt.Println("   router        design  scheme                 L2 mm2   net mm2   avg lat   nJ/acc     IPC")
	for _, p := range pts {
		if p.Skipped != "" {
			fmt.Printf("   %-13s %-7s %-21s skipped: %s\n", p.RouterName, p.DesignID, p.Scheme, p.Skipped)
			continue
		}
		mark := " "
		if p.Frontier {
			mark = "*"
		}
		fmt.Printf(" %s %-13s %-7s %-21s %7.1f   %7.2f   %7.1f   %6.2f   %5.3f\n",
			mark, p.RouterName, p.DesignID, p.Scheme,
			p.AreaMM2, p.NetMM2, p.AvgLat, p.EnergyNJ, p.IPC)
	}
	fmt.Println("('*' = on the area/latency/energy frontier: no point is better on all three axes)")
	sweepLine(rep)
}

// telemetryExp runs the cycle-level probe comparison: designs A (mesh),
// D (simplified mesh), F (halo) side by side on gcc under multicast
// Fast-LRU, printing whatever probes the flags selected. Invoked with no
// probe flags (-exp telemetry alone) it defaults to heatmaps plus a
// 200-cycle time series.
func telemetryExp(cfg core.ExpConfig, tcfg telemetry.Config, traceOut string) {
	header("Telemetry: spatial and temporal view, designs A / D / F on gcc, " + schemeLabel(cfg))
	if !tcfg.Enabled() {
		tcfg = telemetry.Config{Heatmap: true, SampleEvery: 200}
	}
	runs, rep, err := core.TelemetryCompare(cfg, "gcc", tcfg)
	fatal(err)
	for _, tr := range runs {
		r := tr.Result
		fmt.Printf("-- design %s: IPC %.4f, avg latency %.1f, p50 %d, p99 %d, max %d\n",
			tr.DesignID, r.IPC, r.AvgLatency,
			r.Latency.Percentile(0.50), r.Latency.Percentile(0.99), r.Latency.MaxLat)
		if tel := r.Telemetry; tel != nil {
			if tel.Heat != nil {
				tel.Heat.Render(os.Stdout)
			}
			if tel.Series != nil {
				tel.Series.Render(os.Stdout)
			}
		}
	}
	if traceOut != "" {
		fatal(writeTelemetryTraces(traceOut, runs))
	}
	sweepLine(rep)
}

// writeTelemetryTraces serializes the comparison's event traces as one
// JSONL stream in design order, each run led by a {"ev":"run"} meta line.
func writeTelemetryTraces(path string, runs []core.TelemetryRun) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	for _, tr := range runs {
		tel := tr.Result.Telemetry
		if tel == nil || tel.Trace == nil {
			continue
		}
		if _, err := fmt.Fprintf(w, "{\"ev\":\"run\",\"design\":%q,\"bench\":\"gcc\",\"seed\":%d,\"events\":%d}\n",
			tr.DesignID, tr.Result.Options.Seed, tel.Trace.Len()); err != nil {
			return err
		}
		if err := tel.Trace.WriteJSONL(w); err != nil {
			return err
		}
	}
	return nil
}

// sweepLine reports the engine's accounting for one sweep: total wall
// time, summed per-run work, and the realized parallel speedup.
func sweepLine(rep core.SweepReport) {
	fmt.Printf("[%d runs, j=%d: wall %.1fs, work %.1fs, speedup %.1fx]\n",
		rep.Runs, rep.Workers, rep.Wall.Seconds(), rep.Work.Seconds(), rep.Speedup())
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
}

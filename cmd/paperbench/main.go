// Command paperbench regenerates every table and figure of the paper's
// evaluation section (Section 5-6) and prints the same rows/series.
//
// Usage:
//
//	paperbench -list             # catalogue of registered experiments
//	paperbench -list=all         # every registry catalogue (designs, routers, ...)
//	paperbench -exp all          # everything (several minutes)
//	paperbench -exp f9 -n 4000   # one experiment, smaller runs
//	paperbench -exp f9 -j 8      # fan the sweep out to 8 workers
//	paperbench -exp pareto -fleet        # sweep on the lockstep fleet evaluator
//	paperbench -exp telemetry -heatmap -sample 200
//	paperbench -exp f9 -policy static    # any registered policy name
//
// Experiments dispatch through the core experiment registry
// (core.RegisterExperiment): every name -exp accepts, this command's
// -list output, and nucad's GET /v1/experiments derive from the same
// catalogue, so a newly registered experiment is reachable everywhere
// with no flag plumbing. "-exp all" runs the registered experiments
// that opt into the full reproduction (the paper's tables and figures);
// special-purpose experiments (telemetry, placement) run only when
// named.
//
// -policy and -mode steer the single-scheme experiments (f9, energy,
// power, telemetry); names resolve through the cache policy registry, so
// policies added with cache.RegisterPolicy work unchanged. The
// fixed-scheme reproductions (t1-t4, f7, f8, headline) ignore them.
// -router overrides the router microarchitecture of every simulated run;
// it resolves through the router registry (-list-routers on nucasim).
// -bench selects the benchmark of the single-benchmark experiments
// (energy, power, pareto, telemetry, placement).
//
// The telemetry section compares designs A, D, and F side by side on one
// benchmark with cycle-level probes: -heatmap prints ASCII link/bank
// heatmaps, -sample N prints queue-occupancy time series, -trace F
// writes the flit-level JSONL trace. Passing any of those flags appends
// the section after the selected experiments.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"nucanet/internal/cliutil"
	"nucanet/internal/core"
	_ "nucanet/internal/place" // registers the "placement" experiment and the fleet bulk runner
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment name (see -list), or all")
		n        = flag.Int("n", 8000, "measured L2 accesses per run")
		seed     = flag.Uint64("seed", 42, "random seed")
		bench    = flag.String("bench", "", "benchmark for the single-benchmark experiments (default gcc)")
		useFleet = flag.Bool("fleet", false, "evaluate sweeps on the bulk-synchronous fleet instead of per-run goroutines")
		jobs     = cliutil.Jobs(flag.CommandLine)
		shards   = cliutil.Shards(flag.CommandLine)
		cores    = cliutil.Cores(flag.CommandLine)
		tflags   = cliutil.Telemetry(flag.CommandLine)
	)
	listFlag := cliutil.List(flag.CommandLine, "experiments")
	routerName := cliutil.Router(flag.CommandLine)
	policy, mode := cliutil.Scheme(flag.CommandLine)
	flag.Parse()
	if done, err := listFlag.Handle(os.Stdout); done {
		fatal(err)
		return
	}
	workers, err := cliutil.ResolveJobs(*jobs)
	fatal(err)
	// The scheme flags steer the single-scheme experiments (f9, energy,
	// power, telemetry); any name registered with cache.RegisterPolicy
	// parses. The fixed-scheme reproductions (t1-t4, f7, f8, headline)
	// ignore them by design. Defaults match the paper configuration.
	cfg := core.ExpConfig{
		Accesses: *n, Seed: *seed, Workers: workers,
		PolicyName: policy.String(), ModeName: mode.String(),
		RouterName: *routerName, Bench: *bench,
		Telemetry: tflags.Config(), Fleet: *useFleet, Shards: *shards,
		Cores: *cores,
	}
	traceOut := *tflags.TracePath

	if *exp == "all" {
		for _, name := range core.ExperimentNames() {
			e, err := core.ExperimentByName(name)
			fatal(err)
			if e.InAll {
				runExperiment(e, cfg, traceOut)
			}
		}
		if cfg.Telemetry.Enabled() {
			runNamed("telemetry", cfg, traceOut)
		}
		return
	}
	e, err := core.ExperimentByName(*exp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paperbench: unknown experiment %q (want %s, or all)\n",
			*exp, strings.Join(core.ExperimentNames(), " "))
		os.Exit(1)
	}
	runExperiment(e, cfg, traceOut)
	if cfg.Telemetry.Enabled() && *exp != "telemetry" {
		runNamed("telemetry", cfg, traceOut)
	}
}

func runNamed(name string, cfg core.ExpConfig, traceOut string) {
	e, err := core.ExperimentByName(name)
	fatal(err)
	runExperiment(e, cfg, traceOut)
}

// runExperiment prints one experiment: header, rendered rows, optional
// trace export (telemetry only), and the sweep accounting line when the
// experiment drove the simulation engine.
func runExperiment(e core.Experiment, cfg core.ExpConfig, traceOut string) {
	header(e.Title(cfg))
	rows, rep, err := e.Run(cfg)
	fatal(err)
	rows.Render(os.Stdout)
	if runs, ok := rows.(core.TelemetryRows); ok && traceOut != "" {
		fatal(writeTelemetryTraces(traceOut, runs, cfg))
	}
	if rep.Runs > 0 {
		sweepLine(rep)
	}
}

func header(s string) {
	fmt.Printf("\n=== %s ===\n", s)
}

// writeTelemetryTraces serializes the comparison's event traces as one
// JSONL stream in design order, each run led by a {"ev":"run"} meta line.
func writeTelemetryTraces(path string, runs core.TelemetryRows, cfg core.ExpConfig) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bench := cfg.Bench
	if bench == "" {
		bench = "gcc"
	}
	for _, tr := range runs {
		tel := tr.Result.Telemetry
		if tel == nil || tel.Trace == nil {
			continue
		}
		if _, err := fmt.Fprintf(w, "{\"ev\":\"run\",\"design\":%q,\"bench\":%q,\"seed\":%d,\"events\":%d}\n",
			tr.DesignID, bench, tr.Result.Options.Seed, tel.Trace.Len()); err != nil {
			return err
		}
		if err := tel.Trace.WriteJSONL(w); err != nil {
			return err
		}
	}
	return nil
}

// sweepLine reports the engine's accounting for one sweep: total wall
// time, summed per-run work, and the realized parallel speedup.
func sweepLine(rep core.SweepReport) {
	fmt.Printf("[%d runs, j=%d: wall %.1fs, work %.1fs, speedup %.1fx]\n",
		rep.Runs, rep.Workers, rep.Wall.Seconds(), rep.Work.Seconds(), rep.Speedup())
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
}

// Command nucasim runs one networked-cache simulation and prints its
// measurements: IPC, latency statistics (averages and percentiles), the
// bank/network/memory split, and traffic counters. With -bench all the
// runs fan out to a parallel worker pool (-j), and a merged aggregate
// closes the report.
//
// Cycle-level telemetry is opt-in: -heatmap prints ASCII link/bank
// heatmaps, -sample N prints queue-occupancy time series, and -trace F
// writes the flit-level JSONL event trace ('-' for stdout). Telemetry
// output is deterministic: a fixed seed produces byte-identical traces
// and heatmaps at any -j.
//
// -router selects a registered router microarchitecture (VC wormhole,
// bufferless deflection, ring-lite; -list-routers enumerates them) for
// every run, overriding the design's engine.
//
// -verify-routing skips simulation entirely and runs the static verifier
// over every catalogue design's topology/algorithm pair — the
// channel-dependence deadlock check for buffered engines, the
// productive-route livelock check when -router names a deflecting engine
// — printing one line per design; it exits non-zero if any pair is
// rejected.
//
// Usage:
//
//	nucasim -design A -policy fastlru -mode multicast -bench gcc -n 8000
//	nucasim -design F -bench all -j 8
//	nucasim -design A -router bufferless -bench gcc
//	nucasim -design A -heatmap -sample 100 -trace /tmp/flits.jsonl
//	nucasim -design H2 -policy directory -cores 4   # full-system CMP on the chiplet hierarchy
//	nucasim -verify-routing
//	nucasim -router bufferless -verify-routing
//	nucasim -list                # every registry catalogue
//	nucasim -list=designs        # one catalogue (designs, topologies, routers, policies, experiments)
//	nucasim -list-policies       # alias for -list=policies
//	nucasim -list-routers        # alias for -list=routers
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nucanet/internal/cliutil"
	"nucanet/internal/config"
	"nucanet/internal/core"
	"nucanet/internal/cpu"
	"nucanet/internal/router"
	"nucanet/internal/routing"
	"nucanet/internal/trace"
)

func main() {
	var (
		design   = cliutil.Design(flag.CommandLine)
		bench    = flag.String("bench", "gcc", "benchmark profile (Table 2) or 'all'")
		n        = flag.Int("n", 8000, "measured L2 accesses")
		seed     = flag.Uint64("seed", 42, "random seed")
		window   = flag.Int("window", 8, "CPU outstanding-access window (MSHRs)")
		blocking = flag.Float64("blocking", 0.35, "fraction of reads that stall the core")
		jobs     = cliutil.Jobs(flag.CommandLine)
		shards   = cliutil.Shards(flag.CommandLine)
		cores    = cliutil.Cores(flag.CommandLine)
		tflags   = cliutil.Telemetry(flag.CommandLine)
		verify   = flag.Bool("verify-routing", false,
			"statically verify deadlock freedom of every catalogue design's routing, then exit")
		listPol = flag.Bool("list-policies", false,
			"alias for -list=policies")
		listRouters = flag.Bool("list-routers", false,
			"alias for -list=routers")
	)
	listFlag := cliutil.List(flag.CommandLine, "all")
	routerName := cliutil.Router(flag.CommandLine)
	policy, mode := cliutil.Scheme(flag.CommandLine)
	flag.Parse()

	if *listPol {
		cliutil.ListSchemes(os.Stdout)
		return
	}
	if *listRouters {
		cliutil.ListRouters(os.Stdout)
		return
	}
	if done, err := listFlag.Handle(os.Stdout); done {
		fatal(err)
		return
	}
	if *verify {
		os.Exit(verifyRouting(os.Stdout, *routerName))
	}

	p, m := *policy, *mode
	workers, err := cliutil.ResolveJobs(*jobs)
	fatal(err)

	traceOut := tflags.TracePath
	tcfg := tflags.Config()
	benches := []string{*bench}
	if *bench == "all" {
		benches = trace.Names()
	}
	opts := make([]core.Options, len(benches))
	for i, b := range benches {
		opts[i] = core.Options{
			DesignID: *design, Policy: p, Mode: m, Router: *routerName,
			Benchmark: b, Accesses: *n, Seed: *seed,
			CPU:       cpu.Config{Window: *window, BlockingProb: *blocking},
			Telemetry: tcfg,
			Shards:    *shards,
			Cores:     *cores,
		}
	}
	results, rep, err := core.NewEngine(workers).RunAll(opts)
	fatal(err)
	for i, r := range results {
		fmt.Printf("design %s  %s+%s  %s  (%d accesses, seed %d)  [%.2fs]\n",
			*design, m, p, benches[i], *n, *seed, rep.PerRun[i].Seconds())
		fmt.Printf("  IPC            %.4f (perfect-L2 %.2f)\n", r.IPC, r.PerfectIPC)
		fmt.Printf("  avg latency    %.1f cycles (hit %.1f, miss %.1f)\n",
			r.AvgLatency, r.AvgHit, r.AvgMiss)
		fmt.Printf("  latency pct    p50 %d  p90 %d  p99 %d  max %d\n",
			r.Latency.Percentile(0.50), r.Latency.Percentile(0.90),
			r.Latency.Percentile(0.99), r.Latency.MaxLat)
		fmt.Printf("  hit rate       %.1f%% (%.1f%% of hits at the MRU bank)\n",
			100*r.HitRate, 100*r.MRUHitShare)
		fmt.Printf("  latency split  bank %.1f%% / network %.1f%% / memory %.1f%%\n",
			100*r.BankShare, 100*r.NetworkShare, 100*r.MemShare)
		fmt.Printf("  traffic        %d packets, %d flits, %d replicas (%d blocked cycles)\n",
			r.Network.PacketsInjected, r.Network.FlitsInjected,
			r.Network.Router.ReplicasSpawned, r.Network.Router.ReplicaBlocked)
		fmt.Printf("  memory         %d reads, %d writebacks\n",
			r.Memory.Reads, r.Memory.WriteBacks)
		fmt.Printf("  bank accesses  %d\n", r.BankAccesses)
		for _, cr := range r.Cores {
			fmt.Printf("  core %-2d        ipc %.4f  avg lat %.1f  hit %.1f%%  remote %.1f%%  (%d cycles)\n",
				cr.Core, cr.IPC, cr.AvgLatency, 100*cr.HitRate, 100*cr.RemoteShare, cr.Cycles)
		}
		if d := r.Directory; d != nil {
			fmt.Printf("  directory      %d owners, %d self-evictions, %d cross-evictions\n",
				len(d.Owners), d.SelfDrops, d.CrossDrops)
		}
		if tel := r.Telemetry; tel != nil {
			if tel.Heat != nil {
				tel.Heat.Render(os.Stdout)
			}
			if tel.Series != nil {
				tel.Series.Render(os.Stdout)
			}
		}
	}
	if *traceOut != "" {
		fatal(writeTraces(*traceOut, *design, benches, results))
	}
	if len(results) > 1 {
		agg := core.AggregateOf(results)
		fmt.Printf("aggregate over %d runs (%d accesses)\n", agg.Runs, agg.Accesses)
		fmt.Printf("  avg latency    %.1f cycles (hit %.1f, miss %.1f), hit rate %.1f%%\n",
			agg.Latency.Avg(), agg.Latency.AvgHit(), agg.Latency.AvgMiss(),
			100*agg.Latency.HitRate())
		fmt.Printf("  latency pct    p50 %d  p90 %d  p99 %d  max %d  (merged histogram)\n",
			agg.Latency.Percentile(0.50), agg.Latency.Percentile(0.90),
			agg.Latency.Percentile(0.99), agg.Latency.MaxLat)
		fmt.Printf("  traffic        %d packets, %d flits; memory %d reads, %d writebacks\n",
			agg.Network.PacketsInjected, agg.Network.FlitsInjected, agg.MemReads, agg.MemWB)
		fmt.Printf("[%d runs, j=%d: wall %.1fs, work %.1fs, speedup %.1fx]\n",
			rep.Runs, rep.Workers, rep.Wall.Seconds(), rep.Work.Seconds(), rep.Speedup())
	}
}

// writeTraces serializes every run's event trace to one JSONL stream in
// submission order, each run introduced by a {"ev":"run",...} meta line.
// Run order and event order are both deterministic, so the stream is
// byte-identical for a fixed seed at any -j.
func writeTraces(path, design string, benches []string, results []core.Result) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	for i, r := range results {
		if r.Telemetry == nil || r.Telemetry.Trace == nil {
			continue
		}
		if _, err := fmt.Fprintf(w, "{\"ev\":\"run\",\"design\":%q,\"bench\":%q,\"seed\":%d,\"events\":%d}\n",
			design, benches[i], r.Options.Seed, r.Telemetry.Trace.Len()); err != nil {
			return err
		}
		if err := r.Telemetry.Trace.WriteJSONL(w); err != nil {
			return err
		}
	}
	return nil
}

// verifyRouting runs the static verifier over every design in the
// catalogue (Table 3's A-F plus the extra registered families) and
// reports one line per design: the channel-dependence deadlock check for
// buffered engines, the productive-route livelock check when engineName
// resolves to a deflecting engine. Returns a process exit code.
func verifyRouting(w io.Writer, engineName string) int {
	eng, err := router.ByName(engineName)
	if err != nil {
		fmt.Fprintln(w, err)
		return 1
	}
	property := "deadlock-free"
	if eng.Deflecting {
		property = "livelock-free"
	}
	code := 0
	for _, d := range append(config.Designs(), config.ExtraDesigns()...) {
		topo, err := d.Build()
		if err != nil {
			fmt.Fprintf(w, "design %s  BUILD FAILED  %v\n", d.ID, err)
			code = 1
			continue
		}
		alg, err := routing.For(topo)
		if err != nil {
			fmt.Fprintf(w, "design %s  NO ALGORITHM  %v\n", d.ID, err)
			code = 1
			continue
		}
		if eng.Deflecting {
			err = routing.VerifyDeflectionLivelockFree(topo, alg, eng.AgeMonotone)
		} else {
			err = routing.VerifyDeadlockFree(topo, alg)
		}
		if err != nil {
			fmt.Fprintf(w, "design %s  REJECTED  %v\n", d.ID, err)
			code = 1
			continue
		}
		fmt.Fprintf(w, "design %s  %s  (%s engine %s over %s, %d routers, %d links)\n",
			d.ID, property, alg.Name(), eng.Name, topo.Name, topo.NumNodes(), topo.CountLinks())
	}
	return code
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nucasim:", err)
		os.Exit(1)
	}
}

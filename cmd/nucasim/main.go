// Command nucasim runs one networked-cache simulation and prints its
// measurements: IPC, latency statistics, the bank/network/memory split,
// and traffic counters.
//
// Usage:
//
//	nucasim -design A -policy fastlru -mode multicast -bench gcc -n 8000
package main

import (
	"flag"
	"fmt"
	"os"

	"nucanet/internal/cache"
	"nucanet/internal/core"
	"nucanet/internal/cpu"
	"nucanet/internal/trace"
)

func main() {
	var (
		design   = flag.String("design", "A", "network design (A-F, Table 3)")
		policy   = flag.String("policy", "fastlru", "replacement policy: promotion, lru, fastlru")
		mode     = flag.String("mode", "multicast", "request mode: unicast, multicast")
		bench    = flag.String("bench", "gcc", "benchmark profile (Table 2) or 'all'")
		n        = flag.Int("n", 8000, "measured L2 accesses")
		seed     = flag.Uint64("seed", 42, "random seed")
		window   = flag.Int("window", 8, "CPU outstanding-access window (MSHRs)")
		blocking = flag.Float64("blocking", 0.35, "fraction of reads that stall the core")
	)
	flag.Parse()

	p, err := cache.ParsePolicy(*policy)
	fatal(err)
	m, err := cache.ParseMode(*mode)
	fatal(err)

	benches := []string{*bench}
	if *bench == "all" {
		benches = trace.Names()
	}
	for _, b := range benches {
		r, err := core.Run(core.Options{
			DesignID: *design, Policy: p, Mode: m,
			Benchmark: b, Accesses: *n, Seed: *seed,
			CPU: cpu.Config{Window: *window, BlockingProb: *blocking},
		})
		fatal(err)
		fmt.Printf("design %s  %s+%s  %s  (%d accesses, seed %d)\n",
			*design, m, p, b, *n, *seed)
		fmt.Printf("  IPC            %.4f (perfect-L2 %.2f)\n", r.IPC, r.PerfectIPC)
		fmt.Printf("  avg latency    %.1f cycles (hit %.1f, miss %.1f)\n",
			r.AvgLatency, r.AvgHit, r.AvgMiss)
		fmt.Printf("  hit rate       %.1f%% (%.1f%% of hits at the MRU bank)\n",
			100*r.HitRate, 100*r.MRUHitShare)
		fmt.Printf("  latency split  bank %.1f%% / network %.1f%% / memory %.1f%%\n",
			100*r.BankShare, 100*r.NetworkShare, 100*r.MemShare)
		fmt.Printf("  traffic        %d packets, %d flits, %d replicas (%d blocked cycles)\n",
			r.Network.PacketsInjected, r.Network.FlitsInjected,
			r.Network.Router.ReplicasSpawned, r.Network.Router.ReplicaBlocked)
		fmt.Printf("  memory         %d reads, %d writebacks\n",
			r.Memory.Reads, r.Memory.WriteBacks)
		fmt.Printf("  bank accesses  %d\n", r.BankAccesses)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nucasim:", err)
		os.Exit(1)
	}
}

// Command nucasim runs one networked-cache simulation and prints its
// measurements: IPC, latency statistics, the bank/network/memory split,
// and traffic counters. With -bench all the runs fan out to a parallel
// worker pool (-j), and a merged aggregate closes the report.
//
// Usage:
//
//	nucasim -design A -policy fastlru -mode multicast -bench gcc -n 8000
//	nucasim -design F -bench all -j 8
package main

import (
	"flag"
	"fmt"
	"os"

	"nucanet/internal/cache"
	"nucanet/internal/core"
	"nucanet/internal/cpu"
	"nucanet/internal/trace"
)

func main() {
	var (
		design   = flag.String("design", "A", "network design (A-F, Table 3)")
		policy   = flag.String("policy", "fastlru", "replacement policy: promotion, lru, fastlru")
		mode     = flag.String("mode", "multicast", "request mode: unicast, multicast")
		bench    = flag.String("bench", "gcc", "benchmark profile (Table 2) or 'all'")
		n        = flag.Int("n", 8000, "measured L2 accesses")
		seed     = flag.Uint64("seed", 42, "random seed")
		window   = flag.Int("window", 8, "CPU outstanding-access window (MSHRs)")
		blocking = flag.Float64("blocking", 0.35, "fraction of reads that stall the core")
		jobs     = flag.Int("j", 0, "parallel runs (0 = one per core, 1 = sequential)")
	)
	flag.Parse()

	p, err := cache.ParsePolicy(*policy)
	fatal(err)
	m, err := cache.ParseMode(*mode)
	fatal(err)

	benches := []string{*bench}
	if *bench == "all" {
		benches = trace.Names()
	}
	opts := make([]core.Options, len(benches))
	for i, b := range benches {
		opts[i] = core.Options{
			DesignID: *design, Policy: p, Mode: m,
			Benchmark: b, Accesses: *n, Seed: *seed,
			CPU: cpu.Config{Window: *window, BlockingProb: *blocking},
		}
	}
	results, rep, err := core.NewEngine(*jobs).RunAll(opts)
	fatal(err)
	for i, r := range results {
		fmt.Printf("design %s  %s+%s  %s  (%d accesses, seed %d)  [%.2fs]\n",
			*design, m, p, benches[i], *n, *seed, rep.PerRun[i].Seconds())
		fmt.Printf("  IPC            %.4f (perfect-L2 %.2f)\n", r.IPC, r.PerfectIPC)
		fmt.Printf("  avg latency    %.1f cycles (hit %.1f, miss %.1f)\n",
			r.AvgLatency, r.AvgHit, r.AvgMiss)
		fmt.Printf("  hit rate       %.1f%% (%.1f%% of hits at the MRU bank)\n",
			100*r.HitRate, 100*r.MRUHitShare)
		fmt.Printf("  latency split  bank %.1f%% / network %.1f%% / memory %.1f%%\n",
			100*r.BankShare, 100*r.NetworkShare, 100*r.MemShare)
		fmt.Printf("  traffic        %d packets, %d flits, %d replicas (%d blocked cycles)\n",
			r.Network.PacketsInjected, r.Network.FlitsInjected,
			r.Network.Router.ReplicasSpawned, r.Network.Router.ReplicaBlocked)
		fmt.Printf("  memory         %d reads, %d writebacks\n",
			r.Memory.Reads, r.Memory.WriteBacks)
		fmt.Printf("  bank accesses  %d\n", r.BankAccesses)
	}
	if len(results) > 1 {
		agg := core.AggregateOf(results)
		fmt.Printf("aggregate over %d runs (%d accesses)\n", agg.Runs, agg.Accesses)
		fmt.Printf("  avg latency    %.1f cycles (hit %.1f, miss %.1f), hit rate %.1f%%\n",
			agg.Latency.Avg(), agg.Latency.AvgHit(), agg.Latency.AvgMiss(),
			100*agg.Latency.HitRate())
		fmt.Printf("  traffic        %d packets, %d flits; memory %d reads, %d writebacks\n",
			agg.Network.PacketsInjected, agg.Network.FlitsInjected, agg.MemReads, agg.MemWB)
		fmt.Printf("[%d runs, j=%d: wall %.1fs, work %.1fs, speedup %.1fx]\n",
			rep.Runs, rep.Workers, rep.Wall.Seconds(), rep.Work.Seconds(), rep.Speedup())
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nucasim:", err)
		os.Exit(1)
	}
}

// Command nucaopt searches the topology-placement space for a cache
// network beating the paper's Design F halo at equal or lower area.
//
// A candidate is (topology family, bank stack, endpoint columns); wire
// delays derive from bank geometry, so Table 3's designs A, C, and F are
// points of the space (internal/place). The search is deterministic
// simulated annealing: every proposal passes the static deadlock/
// livelock verifier and the Table 4 area gate before the fleet's
// lockstep batch evaluator scores it on the benchmark mix with short
// screening runs; the shortlist and the baseline re-score at full length
// before the winner is declared.
//
// Usage:
//
//	nucaopt                          # default search (budget 48)
//	nucaopt -budget 200 -confirm 8000
//	nucaopt -seed 7 -benches gcc,mcf,art,apsi
//	nucaopt -budget 6 -wave 4 -screen 60 -confirm 150 -q   # smoke: prints only the result
//	nucaopt -cores 4                 # score candidates as 4-core CMP runs (grid families)
//
// The final line carries the canonical best candidate and its hash;
// identical flags always reproduce it bit-for-bit (make opt-smoke pins
// this).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nucanet/internal/cliutil"
	"nucanet/internal/place"
)

func main() {
	var (
		seed    = flag.Uint64("seed", 1, "annealing RNG seed")
		budget  = flag.Int("budget", 48, "candidates to screen before stopping")
		wave    = flag.Int("wave", 8, "proposals per annealing wave (one fleet batch)")
		screen  = flag.Int("screen", 150, "accesses per screening run")
		confirm = flag.Int("confirm", 4000, "accesses per confirmation run")
		short   = flag.Int("shortlist", 3, "screening candidates graduating to confirmation")
		benches = flag.String("benches", strings.Join(place.DefaultBenchmarks, ","),
			"comma-separated scoring benchmark mix")
		quiet  = flag.Bool("q", false, "suppress per-wave progress")
		jobs   = cliutil.Jobs(flag.CommandLine)
		shards = cliutil.Shards(flag.CommandLine)
		cores  = flag.Int("cores", 0,
			"score candidates as N-core CMP runs (geomean over per-core IPCs; grid families only, 0 = classic single-core)")
	)
	policy, mode := cliutil.Scheme(flag.CommandLine)
	flag.Parse()
	workers, err := cliutil.ResolveJobs(*jobs)
	fatal(err)

	cfg := place.Config{
		Seed:            *seed,
		Budget:          *budget,
		Wave:            *wave,
		ScreenAccesses:  *screen,
		ConfirmAccesses: *confirm,
		Shortlist:       *short,
		Benchmarks:      strings.Split(*benches, ","),
		Workers:         workers,
		Shards:          *shards,
		Policy:          policy.String(),
		Mode:            mode.String(),
		Cores:           *cores,
	}
	if !*quiet {
		cfg.Log = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}
	res, err := place.Search(cfg)
	fatal(err)

	fmt.Printf("\nconfirmed @%d accesses (best first):\n", *confirm)
	for _, s := range res.Confirmed {
		fmt.Printf("  %-44s ipc %.4f  area %6.2f mm2\n", s.Candidate, s.Score, s.AreaMM2)
	}
	fmt.Printf("search: %d screened, %d rejected unsafe, %d rejected by area, %d simulations (wall %.1fs)\n",
		res.Screened, res.RejectedUnsafe, res.RejectedArea, res.Sims, res.Report.Wall.Seconds())
	fmt.Printf("best: %s ipc %.4f (baseline %.4f, %+.2f%%) area %.2f mm2 (baseline %.2f) hash %016x\n",
		res.Best, res.BestScore, res.BaselineScore, 100*(res.BestScore/res.BaselineScore-1),
		res.BestArea.L2MM2(), res.BaselineArea.L2MM2(), res.Best.Hash())
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nucaopt:", err)
		os.Exit(1)
	}
}

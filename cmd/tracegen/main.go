// Command tracegen emits a synthetic L2 access trace in the textual trace
// format (one access per line: "R|W 0x<addr> <instruction-gap>"), suitable
// for replay through the trace package's Decode/Slice APIs.
//
// Usage:
//
//	tracegen -bench mcf -n 100000 -o mcf.trace
//	tracegen -gen uniform -tags 64 -n 10000
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nucanet/internal/trace"
)

func main() {
	var (
		bench = flag.String("bench", "gcc", "benchmark profile (Table 2)")
		gen   = flag.String("gen", "synthetic", "generator: synthetic, uniform, sequential")
		n     = flag.Int("n", 10000, "number of accesses")
		seed  = flag.Uint64("seed", 42, "random seed")
		cols  = flag.Int("cols", 16, "bank-set columns (power of two)")
		sets  = flag.Int("sets", 1024, "sets per bank (power of two)")
		tags  = flag.Int("tags", 64, "distinct tags per set (uniform generator)")
		wfrac = flag.Float64("wfrac", 0.3, "write fraction (uniform generator)")
		gap   = flag.Int64("gap", 30, "instruction gap (uniform/sequential)")
		out   = flag.String("o", "-", "output file ('-' = stdout)")
	)
	flag.Parse()

	am := trace.AddrMap{Columns: *cols, Sets: *sets}
	var g trace.Generator
	switch *gen {
	case "synthetic":
		p, err := trace.ProfileByName(*bench)
		fatal(err)
		g = trace.NewSynthetic(p, am, *seed)
	case "uniform":
		g = trace.NewUniform(am, *tags, *wfrac, *gap, *seed)
	case "sequential":
		g = trace.NewSequential(am, *gap)
	default:
		fatal(fmt.Errorf("unknown generator %q", *gen))
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		fatal(err)
		defer f.Close()
		w = f
	}
	fatal(trace.Encode(w, trace.Take(g, *n)))
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

// Command nucad is the simulation-as-a-service daemon: a long-running
// HTTP server that executes deterministic NUCA simulations on demand
// and serves repeat queries from a content-addressed result cache.
//
//	nucad -addr 127.0.0.1:8080 -j 8 -cache 4096 -queue 16
//
// Endpoints (see EXPERIMENTS.md "Serving experiments over HTTP"):
//
//	POST /v1/run         run (or fetch) one configuration
//	GET  /v1/designs     design catalogue
//	GET  /v1/policies    registered replacement policies
//	GET  /v1/routings    registered routing algorithms
//	GET  /v1/routers     registered router microarchitectures
//	GET  /v1/benchmarks  Table 2 workload profiles
//	GET  /v1/experiments registered experiment catalogue (paperbench -exp)
//	GET  /v1/stats       cache/queue/aggregate counters
//	GET  /v1/healthz     ok, or draining during shutdown
//
// SIGINT/SIGTERM trigger a graceful drain: in-flight and queued runs
// complete and respond before the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	_ "nucanet/internal/place" // registers the "placement" experiment in the catalogue
	"nucanet/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
		jobs         = flag.Int("j", 0, "simulation workers (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue", 16, "per-client pending-run bound (backpressure threshold)")
		cacheEntries = flag.Int("cache", 4096, "result cache capacity (entries)")
		maxAccesses  = flag.Int("max-accesses", 200000, "per-request access-count cap")
		shards       = flag.Int("shards", 1, "kernel shards per simulation (server-side execution knob; results and cache keys are shard-invariant)")
		addrFile     = flag.String("addr-file", "", "write the bound address to this file once listening (for scripts)")
	)
	flag.Parse()

	srv := serve.New(serve.Config{
		Workers:      *jobs,
		QueueDepth:   *queueDepth,
		CacheEntries: *cacheEntries,
		MaxAccesses:  *maxAccesses,
		Shards:       *shards,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			fatal(err)
		}
	}
	log.Printf("nucad: serving on http://%s (workers %d, queue depth %d, cache %d)",
		bound, srv.Workers(), *queueDepth, *cacheEntries)

	hs := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("nucad: %v: draining...", s)
	case err := <-done:
		fatal(err)
	}

	// Drain: stop accepting HTTP, let active handlers (and the runs
	// they wait on) finish, then stop the scheduler.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("nucad: shutdown: %v", err)
	}
	srv.Close()
	log.Printf("nucad: drained, bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nucad:", err)
	os.Exit(1)
}

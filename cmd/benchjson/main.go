// Command benchjson converts `go test -bench` output into a committable
// JSON record, merging repeated invocations under named labels so one
// file can hold before/after snapshots of the same benchmarks:
//
//	go test -bench=. -benchmem -count=3 . | benchjson -o BENCH_kernel.json -label after
//
// The input is the standard benchmark line format (benchstat's input
// format): name, iteration count, then value/unit pairs. Samples of the
// same benchmark (from -count=N) are averaged and the sample count
// recorded. An existing output file is loaded first and the given label
// replaced, leaving other labels untouched; context lines (goos, cpu,
// ...) refresh the file's environment block.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Record is the file layout: environment context plus one benchmark
// table per label.
type Record struct {
	Env    map[string]string            `json:"env,omitempty"`
	Labels map[string]map[string]*Bench `json:"labels"`
}

// Bench is one benchmark's averaged measurements. Units holds every
// value/unit pair from the bench lines — ns/op, B/op, allocs/op, and any
// custom ReportMetric units (IPC, flit-hops/cycle, ...).
type Bench struct {
	Samples int                `json:"samples"`
	Iters   int64              `json:"iters"`
	Units   map[string]float64 `json:"units"`
}

func main() {
	out := flag.String("o", "", "output JSON file (loaded and merged if it exists; default stdout)")
	label := flag.String("label", "run", "label to file these results under")
	flag.Parse()

	rec := &Record{Env: map[string]string{}, Labels: map[string]map[string]*Bench{}}
	if *out != "" {
		if data, err := os.ReadFile(*out); err == nil {
			if err := json.Unmarshal(data, rec); err != nil {
				fatal(fmt.Errorf("%s: %w", *out, err))
			}
			if rec.Env == nil {
				rec.Env = map[string]string{}
			}
			if rec.Labels == nil {
				rec.Labels = map[string]map[string]*Bench{}
			}
		}
	}

	table, sums := map[string]*Bench{}, map[string]map[string]float64{}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		if k, v, ok := strings.Cut(line, ": "); ok && !strings.HasPrefix(line, "Benchmark") {
			switch k {
			case "goos", "goarch", "pkg", "cpu":
				rec.Env[k] = v
			}
			continue
		}
		name, iters, pairs, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		b := table[name]
		if b == nil {
			b = &Bench{Units: map[string]float64{}}
			table[name] = b
			sums[name] = map[string]float64{}
		}
		b.Samples++
		b.Iters += iters
		for unit, val := range pairs {
			sums[name][unit] += val
		}
	}
	fatal(sc.Err())
	if len(table) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}
	for name, b := range table {
		for unit, sum := range sums[name] {
			b.Units[unit] = sum / float64(b.Samples)
		}
	}
	rec.Labels[*label] = table

	enc, err := marshal(rec)
	fatal(err)
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	fatal(os.WriteFile(*out, enc, 0o644))
	names := make([]string, 0, len(table))
	for n := range table {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("benchjson: %s[%s] <- %d benchmarks (%s)\n",
		*out, *label, len(table), strings.Join(names, ", "))
}

// parseBenchLine splits one result line into its name, iteration count,
// and value/unit pairs. Returns ok=false for non-benchmark lines.
func parseBenchLine(line string) (name string, iters int64, pairs map[string]float64, ok bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", 0, nil, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return "", 0, nil, false
	}
	pairs = map[string]float64{}
	for i := 2; i+1 < len(f); i += 2 {
		val, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return "", 0, nil, false
		}
		pairs[f[i+1]] = val
	}
	return f[0], iters, pairs, true
}

// marshal renders the record with stable key order (encoding/json sorts
// map keys) and a trailing newline.
func marshal(rec *Record) ([]byte, error) {
	enc, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(enc, '\n'), nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// Quickstart: simulate the baseline networked L2 cache (Design A, a 16x16
// mesh of 64 KB banks) running the gcc workload with the paper's best
// scheme, multicast Fast-LRU, and print what came out.
package main

import (
	"fmt"
	"log"

	"nucanet/internal/cache"
	"nucanet/internal/core"
)

func main() {
	// The Runner starts from the baseline (Design A, multicast Fast-LRU,
	// gcc) and validates the configuration before simulating.
	runner := core.NewRunner(core.WithAccesses(5000))
	result, err := runner.Run()
	if err != nil {
		log.Fatal(err)
	}

	opts := result.Options
	fmt.Printf("simulated %d L2 accesses of %s on design %s (%s)\n",
		result.Options.Accesses, opts.Benchmark, opts.DesignID, result.Design.Description)
	fmt.Printf("  IPC: %.3f (perfect-L2 IPC would be %.2f)\n", result.IPC, result.PerfectIPC)
	fmt.Printf("  average L2 latency: %.1f cycles (hits %.1f, misses %.1f)\n",
		result.AvgLatency, result.AvgHit, result.AvgMiss)
	fmt.Printf("  hit rate: %.1f%%, with %.1f%% of hits in the closest (MRU) banks\n",
		100*result.HitRate, 100*result.MRUHitShare)
	fmt.Printf("  where the cycles went: %.0f%% bank, %.0f%% network, %.0f%% memory\n",
		100*result.BankShare, 100*result.NetworkShare, 100*result.MemShare)

	// Compare against the same design running D-NUCA's original
	// multicast Promotion policy.
	promo, err := runner.With(core.WithScheme(cache.Promotion, cache.Multicast)).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nswitching Fast-LRU -> Promotion: IPC %.3f -> %.3f (%+.1f%%)\n",
		result.IPC, promo.IPC, 100*(promo.IPC-result.IPC)/result.IPC)
}

// Cmpsharing: the paper's future-work direction, implemented — scale the
// networked L2 from one core to a chip multiprocessor and watch the
// trade-off: aggregate throughput rises with cores while per-core hit
// rates fall (capacity sharing) and latencies rise (remote column homes
// and interconnect contention, both measured on the simulated fabric).
package main

import (
	"flag"
	"fmt"
	"log"

	"nucanet/internal/cache"
	"nucanet/internal/core"
)

func main() {
	design := flag.String("design", "A", "grid design (A-D, G, H2)")
	bench := flag.String("bench", "gcc", "per-core benchmark")
	n := flag.Int("n", 2000, "accesses per core")
	flag.Parse()

	fmt.Printf("design %s, %s per core, multicast Fast-LRU\n\n", *design, *bench)
	fmt.Printf("%5s %12s %12s %10s %10s %10s\n",
		"cores", "throughput", "IPC/core", "hit rate", "avg lat", "remote")

	for _, cores := range []int{1, 2, 4, 8} {
		res, err := core.Run(core.Options{
			DesignID: *design, Policy: cache.FastLRU, Mode: cache.Multicast,
			Cores: cores, Benchmark: *bench, Accesses: *n, Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		var lat, hr, remote float64
		for _, c := range res.Cores {
			lat += c.AvgLatency
			hr += c.HitRate
			remote += c.RemoteShare
		}
		k := float64(len(res.Cores))
		fmt.Printf("%5d %12.3f %12.3f %9.1f%% %10.1f %9.0f%%\n",
			cores, res.IPC, res.IPC/k, 100*hr/k, lat/k, 100*remote/k)
	}

	fmt.Println("\nwhat to look for:")
	fmt.Println(" - throughput grows with cores, but sub-linearly: the cores")
	fmt.Println("   share 16 MB of capacity and the same column bandwidth")
	fmt.Println(" - per-core hit rate falls as working sets evict each other")
	fmt.Println(" - most accesses are homed on a remote controller, crossing")
	fmt.Println("   the top row (and, on H2, the bridge ring) both ways — the")
	fmt.Println("   traffic pattern the paper's future work planned to study")
}

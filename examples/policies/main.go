// Policies: reproduce the Figure 8 experiment for one benchmark — compare
// the five replacement/delivery schemes on the baseline mesh and show how
// Fast-LRU overlaps replacement with the search while multicasting
// parallelizes the tag match.
package main

import (
	"flag"
	"fmt"
	"log"

	"nucanet/internal/core"
)

func main() {
	bench := flag.String("bench", "mcf", "Table 2 benchmark")
	n := flag.Int("n", 6000, "measured accesses")
	flag.Parse()

	fmt.Printf("Design A (16x16 mesh), %s, %d accesses\n\n", *bench, *n)
	fmt.Printf("%-22s %8s %8s %8s %8s %10s\n",
		"scheme", "IPC", "avg lat", "hit lat", "miss lat", "bank accs")

	var base float64
	for _, s := range core.Fig8Schemes() {
		r, err := core.NewRunner(
			core.WithBenchmark(*bench),
			core.WithScheme(s.Policy, s.Mode),
			core.WithAccesses(*n),
		).Run()
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = r.AvgLatency
		}
		fmt.Printf("%-22s %8.3f %8.1f %8.1f %8.1f %10d\n",
			s.Name, r.IPC, r.AvgLatency, r.AvgHit, r.AvgMiss, r.BankAccesses)
	}

	fmt.Println("\nwhat to look for (Section 6.1):")
	fmt.Println(" - Fast-LRU cuts hit latency and bank accesses vs classic LRU:")
	fmt.Println("   tag-match and replacement share one bank access per hop")
	fmt.Println(" - multicasting removes the serial bank-by-bank search, helping")
	fmt.Println("   deep hits and misses most")
	fmt.Println(" - multicast Fast-LRU combines both and wins everywhere")
}

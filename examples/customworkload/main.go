// Customworkload: drive a halo cache directly with your own access stream
// through the lower-level cache.System API — build the system, preload it,
// issue accesses with completion callbacks, and validate the protocol
// against the golden functional model as you go.
package main

import (
	"fmt"
	"log"

	"nucanet/internal/cache"
	"nucanet/internal/config"
	"nucanet/internal/sim"
	"nucanet/internal/trace"
)

func main() {
	// A Design F cache: 16 spikes of non-uniform banks around the hub.
	design, err := config.DesignByID("F")
	if err != nil {
		log.Fatal(err)
	}
	k := sim.NewKernel()
	sys, err := cache.New(k, design, cache.FastLRU, cache.Multicast)
	if err != nil {
		log.Fatal(err)
	}

	// A hand-rolled workload: a hot stride over two columns plus a cold
	// scan that always misses, written with the address map directly.
	am := sys.AM
	var accs []trace.Access
	for i := 0; i < 800; i++ {
		switch i % 4 {
		case 0, 1: // hot reads, same few blocks -> MRU hits
			accs = append(accs, trace.Access{Addr: am.Compose(uint64(1+i%3), 7, 2)})
		case 2: // writes cycling over more tags than the set holds:
			// eventually dirty victims spill back to memory
			accs = append(accs, trace.Access{Addr: am.Compose(uint64(1+(i/4)%24), 9, 11), Write: true})
		case 3: // cold scan spread over sets: compulsory misses
			accs = append(accs, trace.Access{Addr: am.Compose(uint64(1000+i), (i/4)%64, 5)})
		}
	}

	// Track completions with the callback API and mirror every access in
	// the golden reference model.
	golden := sys.NewGoldenFor()
	agree := 0
	done := 0
	for _, a := range accs {
		wantHit, _, _, _ := golden.Access(am.ColumnOf(a.Addr), am.SetOf(a.Addr), am.TagOf(a.Addr))
		want := wantHit
		sys.Issue(a.Addr, a.Write, func(r *cache.Request, now int64) {
			done++
			if r.Hit == want {
				agree++
			}
		})
		// Pace the issue stream: run the kernel a few cycles per access.
		k.Run(12)
	}
	if err := sys.Drain(10_000_000); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("issued %d accesses on design F (halo, non-uniform banks)\n", len(accs))
	fmt.Printf("  completions: %d, golden-model agreement: %d/%d\n", done, agree, done)
	fmt.Printf("  hit rate %.1f%%, avg latency %.1f cycles (hit %.1f / miss %.1f)\n",
		100*sys.Lat.HitRate(), sys.Lat.Avg(), sys.Lat.AvgHit(), sys.Lat.AvgMiss())
	st := sys.Net.Stats()
	fmt.Printf("  network: %d packets, %d flit-hops, %d multicast replicas\n",
		st.PacketsInjected, st.Router.FlitsRouted, st.Router.ReplicasSpawned)
	fmt.Printf("  memory: %d reads, %d writebacks\n",
		sys.Memory.Stats().Reads, sys.Memory.Stats().WriteBacks)
}

// Topologies: reproduce the Figure 9 + Table 4 experiment for one
// benchmark — sweep the six Table 3 network designs under multicast
// Fast-LRU and set performance against silicon area.
package main

import (
	"flag"
	"fmt"
	"log"

	"nucanet/internal/area"
	"nucanet/internal/cache"
	"nucanet/internal/config"
	"nucanet/internal/core"
)

func main() {
	bench := flag.String("bench", "gcc", "Table 2 benchmark")
	n := flag.Int("n", 6000, "measured accesses")
	flag.Parse()

	model := area.DefaultModel()
	fmt.Printf("%s, %d accesses, multicast Fast-LRU everywhere\n\n", *bench, *n)
	fmt.Printf("%-3s %-46s %7s %7s %9s %10s\n",
		"id", "design", "IPC", "norm", "L2 mm2", "net mm2")

	var baseIPC float64
	for _, d := range config.Designs() {
		r, err := core.NewRunner(
			core.WithDesignID(d.ID),
			core.WithScheme(cache.FastLRU, cache.Multicast),
			core.WithBenchmark(*bench),
			core.WithAccesses(*n),
			core.WithSeed(42),
		).Run()
		if err != nil {
			log.Fatal(err)
		}
		if d.ID == "A" {
			baseIPC = r.IPC
		}
		rep, err := model.Analyze(d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-3s %-46s %7.3f %7.3f %9.1f %10.1f\n",
			d.ID, d.Description, r.IPC, r.IPC/baseIPC, rep.L2MM2(), rep.NetworkMM2())
	}

	fmt.Println("\nwhat to look for (Sections 4, 6.2, 6.3):")
	fmt.Println(" - B matches A with far fewer links: XYX routing needs no")
	fmt.Println("   horizontal links outside the core row")
	fmt.Println(" - the halo designs (E, F) put every MRU bank one hop from the")
	fmt.Println("   hub; F also shrinks the die with non-uniform banks")
	fmt.Println(" - F delivers the best IPC on a quarter of A's interconnect area")
}
